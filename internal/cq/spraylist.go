package cq

import (
	"math"
	"math/bits"
	"sync"
	"sync/atomic"

	"relaxsched/internal/rng"
)

// SprayList is a concurrent relaxed priority queue backed by a single lazy
// lock-based skip list (Herlihy & Shavit's fine-grained-locking skip list:
// lock-free wait-free traversals over atomic next pointers, per-node locks
// and logical-deletion marks for updates). Pop does not remove the head:
// it performs a SprayList-style spray walk (Alistarh, Kopinsky, Li &
// Shavit, PPoPP 2015) — start ~log2(p) levels up, take uniform jumps of
// length up to log2(p)+2, descend two levels per hop with a final level-0
// hop — landing on one of the roughly O(p log p) smallest elements, well
// inside the O(p log^3 p) prefix the original analysis permits. Relaxation
// thus comes from randomized *selection inside one structure*, where the
// MultiQueue gets it from two-choice probing *across shards*; the two
// backends bracket the design space the paper's Section 7 discusses.
//
// Like the original, a spray pop only *marks* its victim (logical
// deletion: one CAS, no locks, no search); physical unlinking is deferred
// to the cleaner role. A coin decides between spraying and playing
// cleaner: the cleaner batch-retires the marked prefix under a single
// head-lock acquisition — searchless, because the first node's
// predecessors are all the head sentinel — and takes the first live node,
// the exact DeleteMin. Without cleaning, dead and short nodes would pile
// up in front of the first tall node and become unreachable by sprays;
// with it, every node is unlinked exactly once, amortized one searchless
// unlink per pop. The cleaner coin lands at ~1/2 rather than the paper's
// 1/p: with claims this cheap the exact path is the *inexpensive* pop, it
// keeps the dead prefix short, and under contention its CAS losers probe
// forward to the next live node instead of serializing on the head.
// p = 1 therefore degenerates to an exact queue.
//
// Elements are ordered by (priority, unique sequence number), so duplicate
// values and equal priorities are fine. There is no global size counter
// (same rationale as MultiQueue: it would be the dominant cache-line
// hot-spot); Len traverses and is for tests/diagnostics only.
type SprayList struct {
	head *snode
	tail *snode
	seq  atomic.Uint64
	// maxLvl is an upper bound on the tallest live tower, raised (never
	// lowered) before a tower links in. find and spray start here instead
	// of at sprayMaxHeight, so traversals pay for the list's actual height,
	// not the 24-level ceiling.
	maxLvl atomic.Int32
	p      int // simulated contention width; tunes spray height and cleaner rate
	// cleanerCoins is the numerator of the cleaner-pop rate
	// (cleanerCoins/p), held at ~1/2 across p: the marked backlog is
	// proportional to the gap between cleans, and at the paper's 1/p rate
	// it grows long enough to drag every bottom-level walk through it —
	// the exact pops stay cheap (searchless claim + batched prefix sweep)
	// and degrade into forward probing, not serialization, when their CAS
	// loses.
	cleanerCoins int
}

// sprayMaxHeight bounds skip-list towers; 2^24 expected elements.
const sprayMaxHeight = 24

// snode is a skip-list node. next pointers are atomic so traversals run
// without locks; mu guards structural changes at this node (its next
// pointers are only written by holders of mu), and fullyLinked flips once
// every level is linked.
//
// Logical and physical deletion are separate: marked means popped (a bare
// CAS claims it; the element is gone from the queue's contents the moment
// it flips), unlinked means a cleaner has physically removed the node from
// every level. A marked-but-linked node is a valid predecessor for Push
// and unlink — only unlinked predecessors force a re-search, and those
// disappear from find's view the moment the flag is set, so structural
// retries always make progress.
type snode struct {
	prio int64
	val  int64
	seq  uint64 // unique; (prio, seq) totally orders nodes

	mu          sync.Mutex
	marked      atomic.Bool // logically deleted (popped)
	unlinked    atomic.Bool // physically removed; written only under mu
	fullyLinked atomic.Bool
	next        []atomic.Pointer[snode] // length = topLevel+1
}

// shortTower is the tower height threshold below which a node's next array
// is allocated inline with the node (one object instead of two): a
// geometric(1/2) height is < 4 for 93.75% of nodes, and the push-side
// allocation rate is a measurable share of queue throughput.
const shortTower = 4

// newSnode allocates a node with a tower of topLevel+1 next pointers,
// inline for short towers.
func newSnode(prio, val int64, seq uint64, topLevel int) *snode {
	if topLevel < shortTower {
		c := &struct {
			n   snode
			arr [shortTower]atomic.Pointer[snode]
		}{}
		c.n.prio, c.n.val, c.n.seq = prio, val, seq
		c.n.next = c.arr[:topLevel+1]
		return &c.n
	}
	return &snode{prio: prio, val: val, seq: seq, next: make([]atomic.Pointer[snode], topLevel+1)}
}

// before reports whether n orders strictly before the key (prio, seq).
func (n *snode) before(prio int64, seq uint64) bool {
	if n.prio != prio {
		return n.prio < prio
	}
	return n.seq < seq
}

// NewSprayList returns a concurrent SprayList tuned for contention width p
// (typically threads x queueMultiplier; p = 1 behaves exactly).
func NewSprayList(p int) *SprayList {
	if p < 1 {
		panic("cq: need spray width p >= 1")
	}
	s := &SprayList{
		head: &snode{prio: math.MinInt64, seq: 0, next: make([]atomic.Pointer[snode], sprayMaxHeight)},
		tail: &snode{prio: math.MaxInt64, seq: math.MaxUint64},
		p:    p,
	}
	s.cleanerCoins = 1
	if p >= 4 {
		s.cleanerCoins = p / 2
	}
	s.head.fullyLinked.Store(true)
	s.tail.fullyLinked.Store(true)
	for lvl := range s.head.next {
		s.head.next[lvl].Store(s.tail)
	}
	return s
}

// NumQueues reports 1: the SprayList is a single shared structure.
func (s *SprayList) NumQueues() int { return 1 }

// Len counts live nodes by traversing level 0. Only meaningful at
// quiescence; tests and diagnostics only.
func (s *SprayList) Len() int {
	n := 0
	for x := s.head.next[0].Load(); x != s.tail; x = x.next[0].Load() {
		if !x.marked.Load() && x.fullyLinked.Load() {
			n++
		}
	}
	return n
}

// find locates the predecessor and successor of key (prio, seq) at every
// level, without locking. preds[lvl] is the rightmost node before the key,
// succs[lvl] the following node (possibly tail).
// Levels above maxLvl hold no nodes (the bound is raised before any tower
// links in), so skipping them loses nothing; callers must only consult
// preds/succs at levels <= the maxLvl they observed.
func (s *SprayList) find(prio int64, seq uint64, preds, succs *[sprayMaxHeight]*snode) {
	pred := s.head
	for lvl := int(s.maxLvl.Load()); lvl >= 0; lvl-- {
		curr := pred.next[lvl].Load()
		for curr != s.tail && curr.before(prio, seq) {
			pred = curr
			curr = pred.next[lvl].Load()
		}
		preds[lvl] = pred
		succs[lvl] = curr
	}
}

// randomLevel draws a geometric(1/2) tower height in [0, sprayMaxHeight-1].
func randomLevel(r *rng.Xoshiro) int {
	lvl := bits.TrailingZeros64(r.Uint64() | 1<<(sprayMaxHeight-1))
	return lvl
}

// unlockPreds releases the distinct pred locks acquired for levels
// [0, highest], mirroring the consecutive-dedup order they were taken in.
func unlockPreds(preds *[sprayMaxHeight]*snode, highest int) {
	var prev *snode
	for lvl := 0; lvl <= highest; lvl++ {
		if preds[lvl] != prev {
			preds[lvl].mu.Unlock()
			prev = preds[lvl]
		}
	}
}

// Push inserts a (value, priority) pair. r must be goroutine-local; it
// drives the tower height. Locks are acquired per level in descending key
// order; cleanFront, the only other multi-lock path, inverts that order
// but only ever *tries* its second lock, so Push cannot deadlock.
func (s *SprayList) Push(r *rng.Xoshiro, value, priority int64) {
	if priority == ReservedPriority {
		panic("cq: priority MaxInt64 is reserved")
	}
	seq := s.seq.Add(1)
	topLevel := randomLevel(r)
	// Raise the height bound before searching, so find (ours and every
	// concurrent one) covers this tower's levels from here on.
	//relax:allow spinbound: monotone CAS-max; a failure means another push raised the bound, and the >= check exits
	for {
		cur := s.maxLvl.Load()
		if cur >= int32(topLevel) || s.maxLvl.CompareAndSwap(cur, int32(topLevel)) {
			break
		}
	}
	var preds, succs [sprayMaxHeight]*snode
	for {
		s.find(priority, seq, &preds, &succs)
		// Lock the distinct predecessors bottom-up (preds are non-increasing
		// in key as the level rises, so equal preds are level-consecutive and
		// the acquisition order is globally consistent: descending key).
		highestLocked := -1
		var prevPred *snode
		valid := true
		for lvl := 0; valid && lvl <= topLevel; lvl++ {
			pred, succ := preds[lvl], succs[lvl]
			if pred != prevPred {
				pred.mu.Lock()
				highestLocked = lvl
				prevPred = pred
			}
			// Marked (logically deleted but still linked) neighbours are
			// fine: a concurrent unlink serializes with this link through
			// the pred's lock and re-reads pred.next under it, so the new
			// node cannot be bypassed. Only an *unlinked* pred — whose next
			// pointers lead out of the list — forces a re-search.
			valid = !pred.unlinked.Load() && pred.next[lvl].Load() == succ
		}
		if !valid {
			unlockPreds(&preds, highestLocked)
			continue // a neighbour changed underneath us; re-search
		}
		nn := newSnode(priority, value, seq, topLevel)
		for lvl := 0; lvl <= topLevel; lvl++ {
			nn.next[lvl].Store(succs[lvl])
		}
		for lvl := 0; lvl <= topLevel; lvl++ {
			preds[lvl].next[lvl].Store(nn)
		}
		nn.fullyLinked.Store(true)
		unlockPreds(&preds, highestLocked)
		return
	}
}

// claim logically deletes victim: one CAS, no locks, no search. A claimed
// node is popped — it just has not been physically unlinked yet; that work
// is deferred to the cleaner (popFront). It returns false if a racing pop
// claimed victim first (or victim is still half-linked).
func (s *SprayList) claim(victim *snode) bool {
	return victim.fullyLinked.Load() && victim.marked.CompareAndSwap(false, true)
}

// cleanFront physically unlinks the marked prefix — every logically
// deleted node at the front of the list — under a single head-lock
// acquisition. The first node's predecessor at every one of its levels is
// the head sentinel, so no search is ever needed: unlinking is a straight
// redirect of head.next. Victims are taken with TryLock (the head-first
// acquisition inverts the global descending-key lock order, so waiting
// could deadlock against Push; trying cannot) — a busy victim just ends
// the sweep, and the next cleaner finishes the job.
func (s *SprayList) cleanFront() {
	if x := s.head.next[0].Load(); x == s.tail || !x.marked.Load() {
		return // nothing to clean; skip the lock
	}
	s.head.mu.Lock()
	//relax:allow spinbound: bounded by the marked prefix — each iteration unlinks one node or breaks, and a failed TryLock ends the sweep
	for {
		x := s.head.next[0].Load()
		if x == s.tail || !x.marked.Load() || !x.fullyLinked.Load() {
			break
		}
		if !x.mu.TryLock() {
			break // a push is linking behind x; let the next sweep retire it
		}
		// x is the first node, so head is its pred at every level it
		// occupies; holding head.mu and x.mu freezes both sides of the
		// bypass (a node's next pointers are only written under its mu).
		top := len(x.next) - 1
		for lvl := top; lvl >= 0; lvl-- {
			s.head.next[lvl].Store(x.next[lvl].Load())
		}
		x.unlinked.Store(true)
		x.mu.Unlock()
	}
	s.head.mu.Unlock()
}

// Pop removes and returns a small-rank pair via a spray walk followed by a
// single mark (claim) — no search, no physical unlinking; the deferred
// unlink work is done by the cleaner pops. On the cleaner coin (see
// cleanerCoins) a pop plays cleaner instead and takes the true front
// (popFront). ok is false if the list appeared empty; as with every cq
// backend, racing pushers require a caller-side termination protocol.
//
// When the landed-on node is already claimed by a racing pop, Pop probes
// forward along the bottom level to the next live nodes instead of
// respraying — contended pops diffuse rightward rather than piling back
// onto the same front region. (Before this scheme, every pop paid a
// full-height search to unlink its victim, failures rescanned from the
// head, and per-pop cost grew with p — the cause of the negative thread
// scaling the benchmark trajectory recorded through PR 3.)
func (s *SprayList) Pop(r *rng.Xoshiro) (value, priority int64, ok bool) {
	if s.p == 1 || r.Intn(s.p) < s.cleanerCoins {
		return s.popFront()
	}
	const (
		sprays = 2 // fresh walks before conceding to popFront
		probes = 8 // live nodes tried per walk, moving right from the landing
	)
	for try := 0; try < sprays; try++ {
		x := s.spray(r)
		for probe := 0; x != nil && probe < probes; probe++ {
			if s.claim(x) {
				return x.val, x.prio, true
			}
			x = s.nextLive(x)
		}
	}
	return s.popFront()
}

// nextLive returns the first live node after x at the bottom level, or nil
// when only the tail remains.
func (s *SprayList) nextLive(x *snode) *snode {
	x = x.next[0].Load()
	for x != s.tail && (x.marked.Load() || !x.fullyLinked.Load()) {
		x = x.next[0].Load()
	}
	if x == s.tail {
		return nil
	}
	return x
}

// popFront is the cleaner: it retires the marked prefix (cleanFront), then
// walks the bottom level and claims the first live node — the exact
// DeleteMin. The claimed node itself is left for the next sweep, so a pop
// never searches: spray pops are a walk plus one CAS, cleaner pops one
// head-lock sweep plus a walk, amortized one searchless unlink per pop.
// Sequential (p = 1) use takes this path exclusively and never loses a
// claim, so the unrelaxed configuration stays exact.
func (s *SprayList) popFront() (int64, int64, bool) {
	s.cleanFront()
	x := s.head.next[0].Load()
	for x != s.tail {
		if !x.marked.Load() && x.fullyLinked.Load() && s.claim(x) {
			return x.val, x.prio, true
		}
		x = x.next[0].Load()
	}
	return 0, 0, false
}

// spray performs the randomized walk and returns a candidate live node, or
// nil if the list looked empty from where the walk ended. Shape: enter
// ~log2(p) levels up (capped to the list's actual height), take one
// near-uniform jump of up to maxJump nodes there, drop to the bottom level
// and take one more — a jump of j nodes at level l passes ~j*2^l elements,
// so the entry-level jump spreads the landing over Θ(p) ranks (inside the
// O(p log^3 p) prefix the SprayList analysis permits) and the bottom jump
// smooths within the band it chose. Both jump lengths are sliced out of a
// single 64-bit draw: the walk is the pop hot path, and one rng call per
// level was a measurable share of it.
func (s *SprayList) spray(r *rng.Xoshiro) *snode {
	logp := bits.Len(uint(s.p - 1)) // ceil(log2 p)
	// The jump budget is a constant: the entry level (~log2 p) alone
	// carries the p-scaling, each node passed there covering ~p elements,
	// so the landing spreads over Θ(p) ranks at an identical per-pop walk
	// cost for every p. (A log-p-scaled budget made pops measurably dearer
	// exactly at the thread counts the spray exists to serve.) The width
	// still comfortably separates p concurrent sprays; claims are bare
	// CASes, so residual collisions cost only the forward probe.
	const maxJump = 4
	lvl := logp
	if top := int(s.maxLvl.Load()); lvl > top {
		lvl = top
	}
	if lvl > sprayMaxHeight-1 {
		lvl = sprayMaxHeight - 1
	}
	// Two-level walk: all the rank spread comes from one long jump at the
	// entry level (each node passed there covers ~2^lvl elements), and a
	// short bottom-level jump smooths the landing inside the band the top
	// jump chose. This costs ~maxJump node visits at *every* p — the
	// multi-level descent's visit count grew with log p, which showed up
	// directly as per-pop cost at higher thread counts — while the landing
	// stays spread over Θ(p log p) ranks. Forward probing and the cleaner
	// pops cover the nodes the coarse bands skip.
	draw := r.Uint64()
	x := s.head
	for {
		// Multiply-shift maps 8 fresh bits onto [0, maxJump] with bias
		// below 1/2^8 — a plain modulo of a 4-bit slice made jump 0 a
		// third more likely than the rest, measurably crowding the front.
		jumps := int((draw & 255) * uint64(maxJump+1) >> 8)
		draw >>= 8
		for j := 0; j < jumps; j++ {
			if lvl >= len(x.next) {
				break
			}
			nxt := x.next[lvl].Load()
			if nxt == s.tail {
				break
			}
			x = nxt
		}
		if lvl == 0 {
			break
		}
		lvl = 0
	}
	if x == s.head {
		x = s.head.next[0].Load()
	}
	// Step over logically deleted or half-linked nodes at the bottom level.
	for x != s.tail && (x.marked.Load() || !x.fullyLinked.Load()) {
		x = x.next[0].Load()
	}
	if x == s.tail {
		return nil
	}
	return x
}

var _ Queue = (*SprayList)(nil)
