package cq

import (
	"math"
	"math/bits"
	"sync"
	"sync/atomic"

	"relaxsched/internal/rng"
)

// SprayList is a concurrent relaxed priority queue backed by a single lazy
// lock-based skip list (Herlihy & Shavit's fine-grained-locking skip list:
// lock-free wait-free traversals over atomic next pointers, per-node locks
// and logical-deletion marks for updates). Pop does not remove the head:
// it performs the SprayList spray walk (Alistarh, Kopinsky, Li & Shavit,
// PPoPP 2015) — start ~log2(p) levels up, take uniform jumps of length up
// to log2(p), descend two levels per hop — landing on one of the roughly
// O(p log^3 p) smallest elements with high probability. Relaxation thus
// comes from randomized *selection inside one structure*, where the
// MultiQueue gets it from two-choice probing *across shards*; the two
// backends bracket the design space the paper's Section 7 discusses.
//
// Like the original, a pop behaves exactly (takes the true front) with
// probability 1/p, playing the role of the paper's cleaner threads: without
// it, short nodes pile up in front of the first tall node and become
// unreachable by sprays. p = 1 therefore degenerates to an exact queue.
//
// Elements are ordered by (priority, unique sequence number), so duplicate
// values and equal priorities are fine. There is no global size counter
// (same rationale as MultiQueue: it would be the dominant cache-line
// hot-spot); Len traverses and is for tests/diagnostics only.
type SprayList struct {
	head *snode
	tail *snode
	seq  atomic.Uint64
	p    int // simulated contention width; tunes spray height and cleaner rate
}

// sprayMaxHeight bounds skip-list towers; 2^24 expected elements.
const sprayMaxHeight = 24

// snode is a skip-list node. next pointers are atomic so traversals run
// without locks; mu guards structural changes at this node, marked is the
// logical-deletion flag and fullyLinked flips once every level is linked.
type snode struct {
	prio int64
	val  int64
	seq  uint64 // unique; (prio, seq) totally orders nodes

	mu          sync.Mutex
	marked      atomic.Bool
	fullyLinked atomic.Bool
	next        []atomic.Pointer[snode] // length = topLevel+1
}

// before reports whether n orders strictly before the key (prio, seq).
func (n *snode) before(prio int64, seq uint64) bool {
	if n.prio != prio {
		return n.prio < prio
	}
	return n.seq < seq
}

// NewSprayList returns a concurrent SprayList tuned for contention width p
// (typically threads x queueMultiplier; p = 1 behaves exactly).
func NewSprayList(p int) *SprayList {
	if p < 1 {
		panic("cq: need spray width p >= 1")
	}
	s := &SprayList{
		head: &snode{prio: math.MinInt64, seq: 0, next: make([]atomic.Pointer[snode], sprayMaxHeight)},
		tail: &snode{prio: math.MaxInt64, seq: math.MaxUint64},
		p:    p,
	}
	s.head.fullyLinked.Store(true)
	s.tail.fullyLinked.Store(true)
	for lvl := range s.head.next {
		s.head.next[lvl].Store(s.tail)
	}
	return s
}

// NumQueues reports 1: the SprayList is a single shared structure.
func (s *SprayList) NumQueues() int { return 1 }

// Len counts live nodes by traversing level 0. Only meaningful at
// quiescence; tests and diagnostics only.
func (s *SprayList) Len() int {
	n := 0
	for x := s.head.next[0].Load(); x != s.tail; x = x.next[0].Load() {
		if !x.marked.Load() && x.fullyLinked.Load() {
			n++
		}
	}
	return n
}

// find locates the predecessor and successor of key (prio, seq) at every
// level, without locking. preds[lvl] is the rightmost node before the key,
// succs[lvl] the following node (possibly tail).
func (s *SprayList) find(prio int64, seq uint64, preds, succs *[sprayMaxHeight]*snode) {
	pred := s.head
	for lvl := sprayMaxHeight - 1; lvl >= 0; lvl-- {
		curr := pred.next[lvl].Load()
		for curr != s.tail && curr.before(prio, seq) {
			pred = curr
			curr = pred.next[lvl].Load()
		}
		preds[lvl] = pred
		succs[lvl] = curr
	}
}

// randomLevel draws a geometric(1/2) tower height in [0, sprayMaxHeight-1].
func randomLevel(r *rng.Xoshiro) int {
	lvl := bits.TrailingZeros64(r.Uint64() | 1<<(sprayMaxHeight-1))
	return lvl
}

// unlockPreds releases the distinct pred locks acquired for levels
// [0, highest], mirroring the consecutive-dedup order they were taken in.
func unlockPreds(preds *[sprayMaxHeight]*snode, highest int) {
	var prev *snode
	for lvl := 0; lvl <= highest; lvl++ {
		if preds[lvl] != prev {
			preds[lvl].mu.Unlock()
			prev = preds[lvl]
		}
	}
}

// Push inserts a (value, priority) pair. r must be goroutine-local; it
// drives the tower height. Locks are acquired per level in descending key
// order (the same global order remove uses), so Push cannot deadlock.
func (s *SprayList) Push(r *rng.Xoshiro, value, priority int64) {
	if priority == ReservedPriority {
		panic("cq: priority MaxInt64 is reserved")
	}
	seq := s.seq.Add(1)
	topLevel := randomLevel(r)
	var preds, succs [sprayMaxHeight]*snode
	for {
		s.find(priority, seq, &preds, &succs)
		// Lock the distinct predecessors bottom-up (preds are non-increasing
		// in key as the level rises, so equal preds are level-consecutive and
		// the acquisition order is globally consistent: descending key).
		highestLocked := -1
		var prevPred *snode
		valid := true
		for lvl := 0; valid && lvl <= topLevel; lvl++ {
			pred, succ := preds[lvl], succs[lvl]
			if pred != prevPred {
				pred.mu.Lock()
				highestLocked = lvl
				prevPred = pred
			}
			valid = !pred.marked.Load() && !succ.marked.Load() && pred.next[lvl].Load() == succ
		}
		if !valid {
			unlockPreds(&preds, highestLocked)
			continue // a neighbour changed underneath us; re-search
		}
		nn := &snode{prio: priority, val: value, seq: seq, next: make([]atomic.Pointer[snode], topLevel+1)}
		for lvl := 0; lvl <= topLevel; lvl++ {
			nn.next[lvl].Store(succs[lvl])
		}
		for lvl := 0; lvl <= topLevel; lvl++ {
			preds[lvl].next[lvl].Store(nn)
		}
		nn.fullyLinked.Store(true)
		unlockPreds(&preds, highestLocked)
		return
	}
}

// remove logically then physically deletes victim. It returns false if
// another pop already claimed it. The victim's lock is held while its
// predecessors are locked; victim orders after every predecessor, so the
// global descending-key lock order is preserved and remove cannot deadlock
// with Push or other removes.
func (s *SprayList) remove(victim *snode) bool {
	if !victim.fullyLinked.Load() {
		return false
	}
	victim.mu.Lock()
	if victim.marked.Load() {
		victim.mu.Unlock()
		return false
	}
	victim.marked.Store(true) // claimed; no competing pop can return it now
	topLevel := len(victim.next) - 1
	var preds, succs [sprayMaxHeight]*snode
	for {
		s.find(victim.prio, victim.seq, &preds, &succs)
		highestLocked := -1
		var prevPred *snode
		valid := true
		for lvl := 0; valid && lvl <= topLevel; lvl++ {
			pred := preds[lvl]
			if pred != prevPred {
				pred.mu.Lock()
				highestLocked = lvl
				prevPred = pred
			}
			valid = !pred.marked.Load() && pred.next[lvl].Load() == victim
		}
		if !valid {
			unlockPreds(&preds, highestLocked)
			continue
		}
		for lvl := topLevel; lvl >= 0; lvl-- {
			preds[lvl].next[lvl].Store(victim.next[lvl].Load())
		}
		unlockPreds(&preds, highestLocked)
		victim.mu.Unlock()
		return true
	}
}

// Pop removes and returns a small-rank pair via a spray walk. With
// probability 1/p it instead takes the true front (the cleaner role). ok
// is false if the list appeared empty; as with every cq backend, racing
// pushers require a caller-side termination protocol.
func (s *SprayList) Pop(r *rng.Xoshiro) (value, priority int64, ok bool) {
	if s.p == 1 || r.Intn(s.p) == 0 {
		return s.popFront()
	}
	const attempts = 4
	for try := 0; try < attempts; try++ {
		n := s.spray(r)
		if n == nil {
			break // looked empty; let popFront decide
		}
		if s.remove(n) {
			return n.val, n.prio, true
		}
		// Another pop claimed the landed-on node; respray.
	}
	return s.popFront()
}

// popFront removes the first live node — the exact DeleteMin.
func (s *SprayList) popFront() (int64, int64, bool) {
	for {
		x := s.head.next[0].Load()
		for x != s.tail && (x.marked.Load() || !x.fullyLinked.Load()) {
			x = x.next[0].Load()
		}
		if x == s.tail {
			return 0, 0, false
		}
		if s.remove(x) {
			return x.val, x.prio, true
		}
		// Lost the race for the front node; rescan from the head.
	}
}

// spray performs the randomized walk and returns a candidate live node, or
// nil if the list looked empty from where the walk ended. Parameters follow
// the original paper's shape (and the sequential model in
// internal/spraylist): start ~log2(p) levels up, uniform jumps of up to
// max(1, log2(p)) nodes per level, descend two levels per hop, always
// finishing with a level-0 hop so height-1 nodes stay reachable.
func (s *SprayList) spray(r *rng.Xoshiro) *snode {
	logp := bits.Len(uint(s.p - 1)) // ceil(log2 p)
	maxJump := logp
	if maxJump < 1 {
		maxJump = 1
	}
	lvl := logp
	if lvl > sprayMaxHeight-1 {
		lvl = sprayMaxHeight - 1
	}
	x := s.head
	for {
		jumps := r.Intn(maxJump + 1)
		for j := 0; j < jumps; j++ {
			if lvl >= len(x.next) {
				break
			}
			nxt := x.next[lvl].Load()
			if nxt == s.tail {
				break
			}
			x = nxt
		}
		if lvl == 0 {
			break
		}
		lvl -= 2
		if lvl < 0 {
			lvl = 0
		}
	}
	if x == s.head {
		x = s.head.next[0].Load()
	}
	// Step over logically deleted or half-linked nodes at the bottom level.
	for x != s.tail && (x.marked.Load() || !x.fullyLinked.Load()) {
		x = x.next[0].Load()
	}
	if x == s.tail {
		return nil
	}
	return x
}

var _ Queue = (*SprayList)(nil)
