package cq

import (
	"testing"

	"relaxsched/internal/rng"
)

func TestRandomLevelBounds(t *testing.T) {
	r := rng.New(1)
	counts := make([]int, sprayMaxHeight)
	const draws = 100000
	for i := 0; i < draws; i++ {
		lvl := randomLevel(r)
		if lvl < 0 || lvl >= sprayMaxHeight {
			t.Fatalf("randomLevel = %d outside [0, %d)", lvl, sprayMaxHeight)
		}
		counts[lvl]++
	}
	// Geometric(1/2): level 0 should hold about half the draws.
	if counts[0] < draws/3 || counts[0] > 2*draws/3 {
		t.Fatalf("level-0 frequency %d of %d; want roughly half", counts[0], draws)
	}
}

func TestSprayListFindOrdersBySeqOnEqualPriority(t *testing.T) {
	s := NewSprayList(1)
	r := rng.New(2)
	// Equal priorities must coexist (distinct seq) and FIFO-drain by seq.
	for i := 0; i < 10; i++ {
		s.Push(r, int64(i), 5)
	}
	for want := int64(0); want < 10; want++ {
		v, p, ok := s.Pop(r)
		if !ok || p != 5 || v != want {
			t.Fatalf("got (v=%d p=%d ok=%v), want (%d, 5, true)", v, p, ok, want)
		}
	}
}

func TestSprayListSprayReturnsLiveNode(t *testing.T) {
	s := NewSprayList(8)
	r := rng.New(3)
	const n = 1000
	for i := 0; i < n; i++ {
		s.Push(r, int64(i), int64(i))
	}
	for i := 0; i < 200; i++ {
		x := s.spray(r)
		if x == nil {
			t.Fatal("spray reported empty on a full list")
		}
		if x == s.head || x == s.tail {
			t.Fatal("spray landed on a sentinel")
		}
		if x.marked.Load() || !x.fullyLinked.Load() {
			t.Fatal("spray returned a dead or half-linked node")
		}
	}
}

func TestSprayListClaimOnceAndCleanFront(t *testing.T) {
	s := NewSprayList(2)
	r := rng.New(4)
	s.Push(r, 42, 7)
	s.Push(r, 43, 9)
	victim := s.head.next[0].Load()
	if victim == s.tail {
		t.Fatal("pushed node not linked")
	}
	if !s.claim(victim) {
		t.Fatal("first claim failed")
	}
	if s.claim(victim) {
		t.Fatal("second claim of the same node succeeded")
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d after claim, want 1", s.Len())
	}
	s.cleanFront()
	if !victim.unlinked.Load() {
		t.Fatal("claimed front node not physically unlinked by cleanFront")
	}
	if got := s.head.next[0].Load(); got == victim {
		t.Fatal("claimed node still physically linked after cleanFront")
	}
	s.cleanFront() // idempotent: nothing marked at the front is a no-op
	if s.Len() != 1 {
		t.Fatalf("Len = %d after second cleanFront, want 1", s.Len())
	}
}
