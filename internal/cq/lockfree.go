package cq

import (
	"sync"
	"sync/atomic"

	"relaxsched/internal/rng"
)

// LockFreeMQ is a lock-free MultiQueue: the same sharded two-choice design
// as MultiQueue, but each internal queue is a Treiber-style structure — an
// *immutable* pairing heap published through a single atomic root pointer,
// generalizing the Treiber stack from a list to a heap (the children list
// of a pairing-heap node is itself an immutable Treiber-style linked list).
//
// Every operation is a pure function from the old heap to a new one
// followed by one CompareAndSwap of the root:
//
//   - Push melds a singleton node into the loaded root and CASes;
//   - Pop reads the roots of two random queues — the root pointer *is* the
//     cached top, no separate priority cache can go stale — and CAS-steals
//     the better one: a successful CAS from that root to its delete-min
//     remainder claims the top element atomically.
//
// A failed CAS means another operation succeeded in the same instant, so
// the structure is lock-free (system-wide progress is guaranteed); in the
// terminology of Alistarh, Censor-Hillel & Shavit ("Are Lock-Free
// Concurrent Algorithms Practically Wait-Free?", STOC 2014) the per-shard
// contention is low enough under rerandomization that individual operations
// complete in expected constant retries — the practical-progress argument
// for preferring this backend when workers can be preempted mid-operation:
// unlike the lock-per-queue MultiQueue, a descheduled worker can never
// block pushes or pops by parking inside a critical section.
//
// Go's garbage collector rules out ABA on the root CAS: a node address is
// never reused while any operation still holds it. For the same reason
// nodes cannot go on a free list — an unlinked root may still be traversed
// by a racing pop — so allocation is amortized instead: every operation
// borrows a bump-allocator arena from a sync.Pool (see lfArena) and pays
// one malloc per 256 nodes rather than two per meld.
//
// Like the other backends it keeps no global element counter (Len sums the
// per-root size fields and is exact only at quiescence).
type LockFreeMQ struct {
	queues []lfqueue
}

// lfqueue is one shard: an atomic root pointer, padded so neighbouring
// roots do not share a cache line.
type lfqueue struct {
	_    [64]byte
	root atomic.Pointer[lfnode]
	_    [64]byte
}

// lfnode is an immutable pairing-heap node. Fields are never mutated after
// publication; all updates copy the root path (O(1) nodes for meld).
type lfnode struct {
	prio     int64
	val      int64
	size     int64 // elements in this subtree, for Len
	children *lfchild
}

// lfchild is a link of a node's immutable children list.
type lfchild struct {
	node *lfnode
	next *lfchild
}

// lfArena is a per-operation bump allocator for heap nodes and child
// links, borrowed from a sync.Pool for the duration of one queue
// operation. Every meld allocates one node and one link; before the arena
// that meant two mallocs (plus a pairs slice per delete-min) on every
// Push/Pop — the dominant cost of this backend (ROADMAP's open item on its
// raw-throughput gap to the locked MultiQueue). Chunks are handed out
// slot-by-slot and never reused: nodes are immutable and shared between
// published heap versions, so reclamation stays the garbage collector's
// job (no ABA), and the arena only amortizes allocation — one malloc per
// lfArenaChunk nodes. The trade-off is retention granularity: a chunk
// stays reachable while any node in it is, which is bounded by the queue's
// live contents plus in-flight operations.
type lfArena struct {
	nodes []lfnode
	links []lfchild
	pairs []*lfnode // lfDeleteMin's pairing-pass scratch, reused across calls
}

const lfArenaChunk = 256

var lfArenaPool = sync.Pool{New: func() any { return new(lfArena) }}

func (a *lfArena) node(prio, val, size int64, children *lfchild) *lfnode {
	if len(a.nodes) == 0 {
		a.nodes = make([]lfnode, lfArenaChunk)
	}
	n := &a.nodes[0]
	a.nodes = a.nodes[1:]
	n.prio, n.val, n.size, n.children = prio, val, size, children
	return n
}

func (a *lfArena) link(node *lfnode, next *lfchild) *lfchild {
	if len(a.links) == 0 {
		a.links = make([]lfchild, lfArenaChunk)
	}
	l := &a.links[0]
	a.links = a.links[1:]
	l.node, l.next = node, next
	return l
}

// lfMeld merges two immutable heaps, allocating one node and one child
// link from the arena. Either heap argument may be nil.
func lfMeld(a *lfArena, x, y *lfnode) *lfnode {
	if x == nil {
		return y
	}
	if y == nil {
		return x
	}
	if y.prio < x.prio {
		x, y = y, x
	}
	return a.node(x.prio, x.val, x.size+y.size, a.link(y, x.children))
}

// lfDeleteMin returns the heap with its root removed: the classic two-pass
// pairing merge (meld children pairwise left to right, then fold the pairs
// right to left).
func lfDeleteMin(a *lfArena, h *lfnode) *lfnode {
	if h.children == nil {
		return nil
	}
	pairs := a.pairs[:0]
	for c := h.children; c != nil; {
		first := c.node
		c = c.next
		if c != nil {
			first = lfMeld(a, first, c.node)
			c = c.next
		}
		pairs = append(pairs, first)
	}
	merged := pairs[len(pairs)-1]
	for i := len(pairs) - 2; i >= 0; i-- {
		merged = lfMeld(a, pairs[i], merged)
	}
	a.pairs = pairs[:0]
	return merged
}

// NewLockFreeMQ returns a lock-free MultiQueue with q internal queues.
func NewLockFreeMQ(q int) *LockFreeMQ {
	if q < 1 {
		panic("cq: need at least one queue")
	}
	return &LockFreeMQ{queues: make([]lfqueue, q)}
}

// NumQueues returns the number of internal queues.
func (c *LockFreeMQ) NumQueues() int { return len(c.queues) }

// Len sums the root size fields. Only meaningful at quiescence; tests and
// diagnostics only.
func (c *LockFreeMQ) Len() int {
	total := int64(0)
	for qi := range c.queues {
		if root := c.queues[qi].root.Load(); root != nil {
			total += root.size
		}
	}
	return int(total)
}

// Push melds a singleton into a random queue's root with one CAS. On CAS
// failure it rerandomizes the queue choice (the lock-free analogue of the
// MultiQueue's TryLock rerandomization) for a bounded number of attempts,
// then sticks with one queue — further failures each certify that some
// other operation succeeded, so progress is system-wide.
func (c *LockFreeMQ) Push(r *rng.Xoshiro, value, priority int64) {
	if priority == ReservedPriority {
		panic("cq: priority MaxInt64 is reserved")
	}
	a := lfArenaPool.Get().(*lfArena)
	c.pushHeap(a, r, a.node(priority, value, 1, nil))
	lfArenaPool.Put(a)
}

// pushHeap melds an arbitrary pre-built heap into a random queue.
func (c *LockFreeMQ) pushHeap(a *lfArena, r *rng.Xoshiro, h *lfnode) {
	q := &c.queues[r.Intn(len(c.queues))]
	for try := 0; ; try++ {
		old := q.root.Load()
		if q.root.CompareAndSwap(old, lfMeld(a, old, h)) {
			return
		}
		if try < contentionAttempts {
			q = &c.queues[r.Intn(len(c.queues))]
		}
	}
}

// Pop loads the roots of two random queues, picks the better top and
// CAS-steals it: swinging the root to its delete-min remainder claims the
// element. Probes that find both queues empty or lose the CAS rerandomize;
// after a bounded number of attempts Pop falls back to a full scan. It is
// PopBatch with a batch of one: the probe policy and scan fallback live
// only there.
func (c *LockFreeMQ) Pop(r *rng.Xoshiro) (value, priority int64, ok bool) {
	var one [1]Pair
	if c.PopBatch(r, one[:]) == 0 {
		return 0, 0, false
	}
	return one[0].Value, one[0].Priority, true
}

// PushBatch folds the whole batch into one local heap (no shared-memory
// traffic at all) and publishes it with a single CAS — coordination cost
// O(1) per batch, the strongest amortization any backend offers.
func (c *LockFreeMQ) PushBatch(r *rng.Xoshiro, pairs []Pair) {
	if len(pairs) == 0 {
		return
	}
	a := lfArenaPool.Get().(*lfArena)
	var batch *lfnode
	for _, p := range pairs {
		if p.Priority == ReservedPriority {
			panic("cq: priority MaxInt64 is reserved")
		}
		batch = lfMeld(a, batch, a.node(p.Priority, p.Value, 1, nil))
	}
	c.pushHeap(a, r, batch)
	lfArenaPool.Put(a)
}

// PopBatch CAS-steals up to len(dst) elements from the better of two
// random queues in one shot: it computes the chain of delete-mins locally
// and swings the root once, so a whole batch costs a single successful CAS.
func (c *LockFreeMQ) PopBatch(r *rng.Xoshiro, dst []Pair) int {
	if len(dst) == 0 {
		return 0
	}
	a := lfArenaPool.Get().(*lfArena)
	defer lfArenaPool.Put(a)
	nq := len(c.queues)
	for try := 0; try < contentionAttempts; try++ {
		qi := &c.queues[r.Intn(nq)]
		qj := &c.queues[r.Intn(nq)]
		root := qi.root.Load()
		if rj := qj.root.Load(); root == nil || (rj != nil && rj.prio < root.prio) {
			qi, root = qj, rj
		}
		if root == nil {
			continue // probed two empty queues; rerandomize
		}
		rest, n := lfTakeBatch(a, root, dst)
		if qi.root.CompareAndSwap(root, rest) {
			return n
		}
	}
	// Probes kept losing or missing: scan all queues, still stealing a
	// whole batch. Unlike probing, the scan retries a contended queue until
	// it either wins or sees the queue empty, so 0 is returned only when
	// every queue looked empty at inspection time.
	for qi := range c.queues {
		q := &c.queues[qi]
		for {
			root := q.root.Load()
			if root == nil {
				break
			}
			rest, n := lfTakeBatch(a, root, dst)
			if q.root.CompareAndSwap(root, rest) {
				return n
			}
		}
	}
	return 0
}

// lfTakeBatch fills dst with successive minima of h and returns the
// remaining heap plus the count written. Pure function: h is not mutated,
// so the caller can retry after a failed CAS.
func lfTakeBatch(a *lfArena, h *lfnode, dst []Pair) (*lfnode, int) {
	n := 0
	for h != nil && n < len(dst) {
		dst[n] = Pair{Value: h.val, Priority: h.prio}
		n++
		h = lfDeleteMin(a, h)
	}
	return h, n
}

var (
	_ Queue      = (*LockFreeMQ)(nil)
	_ BatchQueue = (*LockFreeMQ)(nil)
)
