package cq

import (
	"sync/atomic"

	"relaxsched/internal/rng"
)

// LockFreeMQ is a lock-free MultiQueue: the same sharded two-choice design
// as MultiQueue, but each internal queue is a Treiber-style structure — an
// *immutable* pairing heap published through a single atomic root pointer,
// generalizing the Treiber stack from a list to a heap (the children list
// of a pairing-heap node is itself an immutable Treiber-style linked list).
//
// Every operation is a pure function from the old heap to a new one
// followed by one CompareAndSwap of the root:
//
//   - Push melds a singleton node into the loaded root and CASes;
//   - Pop reads the roots of two random queues — the root pointer *is* the
//     cached top, no separate priority cache can go stale — and CAS-steals
//     the better one: a successful CAS from that root to its delete-min
//     remainder claims the top element atomically.
//
// A failed CAS means another operation succeeded in the same instant, so
// the structure is lock-free (system-wide progress is guaranteed); in the
// terminology of Alistarh, Censor-Hillel & Shavit ("Are Lock-Free
// Concurrent Algorithms Practically Wait-Free?", STOC 2014) the per-shard
// contention is low enough under rerandomization that individual operations
// complete in expected constant retries — the practical-progress argument
// for preferring this backend when workers can be preempted mid-operation:
// unlike the lock-per-queue MultiQueue, a descheduled worker can never
// block pushes or pops by parking inside a critical section.
//
// Go's garbage collector rules out ABA on the root CAS: a node address is
// never reused while any operation still holds it.
//
// Like the other backends it keeps no global element counter (Len sums the
// per-root size fields and is exact only at quiescence).
type LockFreeMQ struct {
	queues []lfqueue
}

// lfqueue is one shard: an atomic root pointer, padded so neighbouring
// roots do not share a cache line.
type lfqueue struct {
	_    [64]byte
	root atomic.Pointer[lfnode]
	_    [64]byte
}

// lfnode is an immutable pairing-heap node. Fields are never mutated after
// publication; all updates copy the root path (O(1) nodes for meld).
type lfnode struct {
	prio     int64
	val      int64
	size     int64 // elements in this subtree, for Len
	children *lfchild
}

// lfchild is a link of a node's immutable children list.
type lfchild struct {
	node *lfnode
	next *lfchild
}

// lfMeld merges two immutable heaps, allocating one node and one child
// link. Either argument may be nil.
func lfMeld(a, b *lfnode) *lfnode {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	if b.prio < a.prio {
		a, b = b, a
	}
	return &lfnode{
		prio:     a.prio,
		val:      a.val,
		size:     a.size + b.size,
		children: &lfchild{node: b, next: a.children},
	}
}

// lfDeleteMin returns the heap with its root removed: the classic two-pass
// pairing merge (meld children pairwise left to right, then fold the pairs
// right to left).
func lfDeleteMin(h *lfnode) *lfnode {
	if h.children == nil {
		return nil
	}
	var pairs []*lfnode
	for c := h.children; c != nil; {
		first := c.node
		c = c.next
		if c != nil {
			first = lfMeld(first, c.node)
			c = c.next
		}
		pairs = append(pairs, first)
	}
	merged := pairs[len(pairs)-1]
	for i := len(pairs) - 2; i >= 0; i-- {
		merged = lfMeld(pairs[i], merged)
	}
	return merged
}

// NewLockFreeMQ returns a lock-free MultiQueue with q internal queues.
func NewLockFreeMQ(q int) *LockFreeMQ {
	if q < 1 {
		panic("cq: need at least one queue")
	}
	return &LockFreeMQ{queues: make([]lfqueue, q)}
}

// NumQueues returns the number of internal queues.
func (c *LockFreeMQ) NumQueues() int { return len(c.queues) }

// Len sums the root size fields. Only meaningful at quiescence; tests and
// diagnostics only.
func (c *LockFreeMQ) Len() int {
	total := int64(0)
	for qi := range c.queues {
		if root := c.queues[qi].root.Load(); root != nil {
			total += root.size
		}
	}
	return int(total)
}

// Push melds a singleton into a random queue's root with one CAS. On CAS
// failure it rerandomizes the queue choice (the lock-free analogue of the
// MultiQueue's TryLock rerandomization) for a bounded number of attempts,
// then sticks with one queue — further failures each certify that some
// other operation succeeded, so progress is system-wide.
func (c *LockFreeMQ) Push(r *rng.Xoshiro, value, priority int64) {
	if priority == ReservedPriority {
		panic("cq: priority MaxInt64 is reserved")
	}
	c.pushHeap(r, &lfnode{prio: priority, val: value, size: 1})
}

// pushHeap melds an arbitrary pre-built heap into a random queue.
func (c *LockFreeMQ) pushHeap(r *rng.Xoshiro, h *lfnode) {
	q := &c.queues[r.Intn(len(c.queues))]
	for try := 0; ; try++ {
		old := q.root.Load()
		if q.root.CompareAndSwap(old, lfMeld(old, h)) {
			return
		}
		if try < contentionAttempts {
			q = &c.queues[r.Intn(len(c.queues))]
		}
	}
}

// Pop loads the roots of two random queues, picks the better top and
// CAS-steals it: swinging the root to its delete-min remainder claims the
// element. Probes that find both queues empty or lose the CAS rerandomize;
// after a bounded number of attempts Pop falls back to a full scan. It is
// PopBatch with a batch of one: the probe policy and scan fallback live
// only there.
func (c *LockFreeMQ) Pop(r *rng.Xoshiro) (value, priority int64, ok bool) {
	var one [1]Pair
	if c.PopBatch(r, one[:]) == 0 {
		return 0, 0, false
	}
	return one[0].Value, one[0].Priority, true
}

// PushBatch folds the whole batch into one local heap (no shared-memory
// traffic at all) and publishes it with a single CAS — coordination cost
// O(1) per batch, the strongest amortization any backend offers.
func (c *LockFreeMQ) PushBatch(r *rng.Xoshiro, pairs []Pair) {
	if len(pairs) == 0 {
		return
	}
	var batch *lfnode
	for _, p := range pairs {
		if p.Priority == ReservedPriority {
			panic("cq: priority MaxInt64 is reserved")
		}
		batch = lfMeld(batch, &lfnode{prio: p.Priority, val: p.Value, size: 1})
	}
	c.pushHeap(r, batch)
}

// PopBatch CAS-steals up to len(dst) elements from the better of two
// random queues in one shot: it computes the chain of delete-mins locally
// and swings the root once, so a whole batch costs a single successful CAS.
func (c *LockFreeMQ) PopBatch(r *rng.Xoshiro, dst []Pair) int {
	if len(dst) == 0 {
		return 0
	}
	nq := len(c.queues)
	for try := 0; try < contentionAttempts; try++ {
		qi := &c.queues[r.Intn(nq)]
		qj := &c.queues[r.Intn(nq)]
		root := qi.root.Load()
		if rj := qj.root.Load(); root == nil || (rj != nil && rj.prio < root.prio) {
			qi, root = qj, rj
		}
		if root == nil {
			continue // probed two empty queues; rerandomize
		}
		rest, n := lfTakeBatch(root, dst)
		if qi.root.CompareAndSwap(root, rest) {
			return n
		}
	}
	// Probes kept losing or missing: scan all queues, still stealing a
	// whole batch. Unlike probing, the scan retries a contended queue until
	// it either wins or sees the queue empty, so 0 is returned only when
	// every queue looked empty at inspection time.
	for qi := range c.queues {
		q := &c.queues[qi]
		for {
			root := q.root.Load()
			if root == nil {
				break
			}
			rest, n := lfTakeBatch(root, dst)
			if q.root.CompareAndSwap(root, rest) {
				return n
			}
		}
	}
	return 0
}

// lfTakeBatch fills dst with successive minima of h and returns the
// remaining heap plus the count written. Pure function: h is not mutated,
// so the caller can retry after a failed CAS.
func lfTakeBatch(h *lfnode, dst []Pair) (*lfnode, int) {
	n := 0
	for h != nil && n < len(dst) {
		dst[n] = Pair{Value: h.val, Priority: h.prio}
		n++
		h = lfDeleteMin(h)
	}
	return h, n
}

var (
	_ Queue      = (*LockFreeMQ)(nil)
	_ BatchQueue = (*LockFreeMQ)(nil)
)
