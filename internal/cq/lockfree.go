package cq

import (
	"sync"
	"sync/atomic"

	"relaxsched/internal/epoch"
	"relaxsched/internal/rng"
)

// LockFreeMQ is a nonblocking MultiQueue over mutable, reusable
// pairing-heap nodes. Each shard publishes its heap through a single atomic
// root pointer, and every mutation follows the ownership-transfer pattern:
//
//   - take: one atomic Swap(nil) detaches the shard's entire heap, making
//     the caller its exclusive owner — the lock-free analogue of acquiring
//     the shard lock, except the Swap itself is wait-free and a preempted
//     owner can never block anyone (other operations simply see an
//     apparently empty shard and take their traffic elsewhere, exactly the
//     redirection the two-choice protocol performs anyway);
//   - mutate: the owner melds, deletes minima and reuses nodes with plain
//     in-place pointer surgery — no copying, no allocation on pop;
//   - publish: one CompareAndSwap(nil, heap) re-links the result; if a
//     concurrent publish got there first, the owner Swaps that heap out and
//     melds it in before retrying. Only nil-compare CASes and unconditional
//     Swaps touch the roots, so node reuse can never cause ABA.
//
// The predecessor of this design kept shards as *immutable* pairing heaps:
// safe to share, but every pop copied O(children) nodes to build the
// remainder and no node could ever be reused in place, so allocation could
// only be amortized through sync.Pool bump arenas (the gap ROADMAP tracked
// against the locked MultiQueue). Mutability removes the copies; what it
// needs in exchange is safe reclamation, because one read path still runs
// on shared nodes: the two-choice probe dereferences the prio of roots it
// does not own. internal/epoch provides it — probes run inside an epoch
// critical section, popped nodes are retired to the popper's epoch slot,
// and after the grace period they return through the slot's free list to be
// reinitialized by later pushes ("Are Lock-Free Concurrent Algorithms
// Practically Wait-Free?" gives the scheduling argument for why those
// critical sections stay short and reuse stays fast in practice).
//
// Epoch slots and free lists need a worker identity, so the backend hands
// out per-worker sessions: NewHandle returns a Handle carrying an epoch
// slot and a home shard. Handles are also where shard-affine placement
// lives: a handle's pushes always publish to its home shard and its pops
// probe home-first (home top vs one uniformly random top, preserving
// two-choice rank quality), so a worker's hot path keeps hitting cache
// lines it already owns instead of scattering across all shards — the
// per-core-data discipline of ddtxn applied to the MultiQueue. The plain
// Queue/BatchQueue methods still work for identity-less callers by
// borrowing an anonymous pooled handle per operation.
//
// Like the other backends it keeps no global element counter; Len sums
// per-shard atomic sizes and is exact only at quiescence.
type LockFreeMQ struct {
	queues []lfshard
	dom    *epoch.Domain[lfnode]
	// nextHome deals out home shards round-robin as handles are created, so
	// engine workers 0..T-1 land on distinct shards whenever there are at
	// least as many shards as workers (the registry builds threads *
	// multiplier >= threads of them).
	nextHome atomic.Uint64
	// affine disables home-shard preference when false (uniform two-choice
	// everywhere) — the ablation knob behind NewLockFreeMQUniform.
	affine bool
	// anon pools single-operation handles for the plain Queue/BatchQueue
	// methods; sync.Pool's per-P caching gives even anonymous callers
	// stable epoch slots and home shards.
	anon sync.Pool
}

// lfshard is one shard: an atomic heap root plus an element count, padded
// so neighbouring shards never share a cache line.
type lfshard struct {
	_    [64]byte
	root atomic.Pointer[lfnode]
	size atomic.Int64
	_    [48]byte
}

// lfnode is a mutable pairing-heap node: child points at the leftmost
// child, sibling links the children of one parent. prio and val are
// written only while the node is unpublished (a fresh or epoch-matured
// reused node); child and sibling are only mutated by a shard owner, so
// the sole shared read — a probe loading root.prio — races nothing.
type lfnode struct {
	prio    int64
	val     int64
	child   *lfnode
	sibling *lfnode
}

// lfMeld links two owned heaps in place: the worse root becomes the better
// root's leftmost child. Either argument may be nil; the melded root's own
// sibling link is left untouched (callers keep roots sibling-free).
func lfMeld(a, b *lfnode) *lfnode {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	if b.prio < a.prio {
		a, b = b, a
	}
	b.sibling = a.child
	a.child = b
	return a
}

// lfDeleteMin removes the root of an owned heap in place: the classic
// two-pass pairing merge (meld children pairwise left to right, fold right
// to left), using the children's own sibling links as the pass-two stack —
// no allocation, no copying. The detached root's links are cleared; the
// caller retires it.
func lfDeleteMin(h *lfnode) *lfnode {
	c := h.child
	h.child = nil
	var stack *lfnode // melded pairs, chained by sibling, most recent first
	for c != nil {
		a := c
		b := a.sibling
		if b == nil {
			a.sibling = stack
			stack = a
			break
		}
		next := b.sibling
		a.sibling, b.sibling = nil, nil
		m := lfMeld(a, b)
		m.sibling = stack
		stack = m
		c = next
	}
	var merged *lfnode
	for stack != nil {
		next := stack.sibling
		stack.sibling = nil
		merged = lfMeld(merged, stack)
		stack = next
	}
	return merged
}

// NewLockFreeMQ returns a lock-free MultiQueue with q internal shards and
// shard-affine handle placement.
func NewLockFreeMQ(q int) *LockFreeMQ {
	return newLockFreeMQ(q, true)
}

// NewLockFreeMQUniform returns the same structure with affinity disabled:
// every handle probes and publishes uniformly at random, exactly the
// classic MultiQueue placement. It exists for the affinity ablation
// experiment and for tests; production callers want NewLockFreeMQ.
func NewLockFreeMQUniform(q int) *LockFreeMQ {
	return newLockFreeMQ(q, false)
}

func newLockFreeMQ(q int, affine bool) *LockFreeMQ {
	if q < 1 {
		panic("cq: need at least one queue")
	}
	c := &LockFreeMQ{
		queues: make([]lfshard, q),
		dom:    epoch.NewDomain[lfnode](),
		affine: affine,
	}
	c.anon.New = func() any { return c.NewHandle() }
	return c
}

// NumQueues returns the number of internal shards.
func (c *LockFreeMQ) NumQueues() int { return len(c.queues) }

// RecyclesNodes reports that this backend reuses nodes in place — the
// cqtest allocation-regression suite gates steady-state allocations only on
// backends that claim so.
func (c *LockFreeMQ) RecyclesNodes() bool { return true }

// Len sums the per-shard element counts. Only meaningful at quiescence;
// tests and diagnostics only.
func (c *LockFreeMQ) Len() int {
	total := int64(0)
	for qi := range c.queues {
		total += c.queues[qi].size.Load()
	}
	return int(total)
}

// NewHandle returns a per-worker session: an epoch slot for reclamation
// and a round-robin home shard for affinity. Single-goroutine; Close when
// the worker exits.
func (c *LockFreeMQ) NewHandle() Handle {
	return &lfHandle{
		q:    c,
		slot: c.dom.Register(),
		home: int((c.nextHome.Add(1) - 1) % uint64(len(c.queues))),
	}
}

// borrow takes an anonymous pooled handle for one plain Queue/BatchQueue
// operation.
func (c *LockFreeMQ) borrow() *lfHandle {
	return c.anon.Get().(*lfHandle)
}

// Push inserts one pair through an anonymous handle.
func (c *LockFreeMQ) Push(r *rng.Xoshiro, value, priority int64) {
	h := c.borrow()
	h.Push(r, value, priority)
	c.anon.Put(h)
}

// Pop removes a small-rank pair through an anonymous handle.
func (c *LockFreeMQ) Pop(r *rng.Xoshiro) (value, priority int64, ok bool) {
	h := c.borrow()
	value, priority, ok = h.Pop(r)
	c.anon.Put(h)
	return
}

// PushBatch inserts the whole batch through an anonymous handle.
func (c *LockFreeMQ) PushBatch(r *rng.Xoshiro, pairs []Pair) {
	h := c.borrow()
	h.PushBatch(r, pairs)
	c.anon.Put(h)
}

// PopBatch removes up to len(dst) pairs through an anonymous handle.
func (c *LockFreeMQ) PopBatch(r *rng.Xoshiro, dst []Pair) int {
	h := c.borrow()
	n := h.PopBatch(r, dst)
	c.anon.Put(h)
	return n
}

// lfHandle is one worker's session: its epoch slot (reclamation identity)
// and home shard (placement identity). Single-goroutine.
type lfHandle struct {
	q    *LockFreeMQ
	slot *epoch.Slot[lfnode]
	home int
}

// Close releases the epoch slot for reuse by a future handle. The home
// shard needs no release — affinity is advisory, elements in it stay
// poppable by everyone.
func (h *lfHandle) Close() { h.slot.Close() }

// publish re-links an owned heap into a shard. The fast path is one CAS
// against an empty root; on interference the racing heap is swapped out
// and melded in, so no element is ever abandoned. Each retry certifies
// that another operation published in the meantime — system-wide progress.
func publish(s *lfshard, h *lfnode) {
	//relax:allow spinbound: lock-free by construction — each failed CAS certifies another operation published to this shard (see comment above)
	for {
		if s.root.CompareAndSwap(nil, h) {
			return
		}
		if old := s.root.Swap(nil); old != nil {
			h = lfMeld(old, h)
		}
	}
}

// shard returns the handle's placement choice for a push: the home shard
// under affinity, a uniformly random one otherwise.
func (h *lfHandle) shard(r *rng.Xoshiro) *lfshard {
	if h.q.affine {
		return &h.q.queues[h.home]
	}
	return &h.q.queues[r.Intn(len(h.q.queues))]
}

// newNode reinitializes a reused (or freshly allocated) node. Safe exactly
// because the epoch grace period has passed: no probe can still hold the
// node, so rewriting prio races nothing.
func (h *lfHandle) newNode(value, priority int64) *lfnode {
	n := h.slot.Alloc()
	n.prio, n.val, n.child, n.sibling = priority, value, nil, nil
	return n
}

// Push publishes a singleton node — reusing a reclaimed one when available
// — to the handle's placement shard.
//
//relax:hotpath
func (h *lfHandle) Push(r *rng.Xoshiro, value, priority int64) {
	if priority == ReservedPriority {
		panic("cq: priority MaxInt64 is reserved")
	}
	s := h.shard(r)
	publish(s, h.newNode(value, priority))
	s.size.Add(1)
}

// PushBatch melds the whole batch into one owned heap — no shared-memory
// traffic at all — and publishes it in one round: the strongest
// amortization any backend offers, now allocation-free in steady state.
//
//relax:hotpath
func (h *lfHandle) PushBatch(r *rng.Xoshiro, pairs []Pair) {
	if len(pairs) == 0 {
		return
	}
	var batch *lfnode
	for _, p := range pairs {
		if p.Priority == ReservedPriority {
			panic("cq: priority MaxInt64 is reserved")
		}
		batch = lfMeld(batch, h.newNode(p.Value, p.Priority))
	}
	s := h.shard(r)
	publish(s, batch)
	s.size.Add(int64(len(pairs)))
}

// Pop is PopBatch with a batch of one: the probe policy and scan fallback
// live only there.
//
//relax:hotpath
func (h *lfHandle) Pop(r *rng.Xoshiro) (value, priority int64, ok bool) {
	var one [1]Pair
	if h.PopBatch(r, one[:]) == 0 {
		return 0, 0, false
	}
	return one[0].Value, one[0].Priority, true
}

// better compares the tops of two shards inside an epoch critical section
// — the one place a worker dereferences nodes it does not own, and exactly
// what the grace period protects — returning the shard with the smaller
// top, or nil if both appeared empty.
//
//relax:hotpath
func (h *lfHandle) better(a, b *lfshard) *lfshard {
	h.slot.Enter()
	ra, rb := a.root.Load(), b.root.Load()
	var s *lfshard
	switch {
	case ra == nil && rb == nil:
		s = nil
	case ra == nil:
		s = b
	case rb == nil:
		s = a
	case rb.prio < ra.prio:
		s = b
	default:
		s = a
	}
	h.slot.Exit()
	return s
}

// PopBatch detaches the better of two probed shards' heaps, takes up to
// len(dst) successive minima in place (each detached root is retired to
// the handle's epoch slot for eventual reuse), and republishes the
// remainder. Under affinity the first probe pairs the home shard with one
// random shard — two-choice quality, cache-local on the common path; later
// probes and the non-affine mode draw both uniformly. After bounded probe
// attempts it falls back to a full scan, so 0 is returned only when every
// shard looked empty at inspection time.
//
//relax:hotpath
func (h *lfHandle) PopBatch(r *rng.Xoshiro, dst []Pair) int {
	if len(dst) == 0 {
		return 0
	}
	q := h.q
	nq := len(q.queues)
	for try := 0; try < contentionAttempts; try++ {
		var a *lfshard
		if q.affine && try == 0 {
			a = &q.queues[h.home]
		} else {
			a = &q.queues[r.Intn(nq)]
		}
		s := h.better(a, &q.queues[r.Intn(nq)])
		if s == nil {
			// Both probes empty: go straight to the authoritative scan.
			// Retrying the random probes would just make apparent-empty pops
			// — the termination protocol's hot case — pay contentionAttempts
			// rounds for nothing; the attempts budget is for losing takes.
			break
		}
		if n := h.takeFrom(s, dst); n > 0 {
			return n
		}
	}
	// Probes kept missing or losing takes: scan every shard. takeFrom
	// returns 0 only if the Swap found the root nil, so a zero scan means
	// every shard looked empty at its inspection instant.
	for qi := range q.queues {
		if n := h.takeFrom(&q.queues[qi], dst); n > 0 {
			return n
		}
	}
	return 0
}

// takeFrom detaches s's heap, harvests up to len(dst) minima in place and
// republishes the remainder. The popped roots are retired — after the
// epoch grace period they come back through the slot's free list.
//
//relax:hotpath
func (h *lfHandle) takeFrom(s *lfshard, dst []Pair) int {
	// Load-only fast path: an apparently empty shard costs a read, not an
	// atomic RMW on its root cache line. This is what idle workers hammer
	// while the termination double scan converges.
	if s.root.Load() == nil {
		return 0
	}
	root := s.root.Swap(nil)
	if root == nil {
		return 0
	}
	n := 0
	for root != nil && n < len(dst) {
		dst[n] = Pair{Value: root.val, Priority: root.prio}
		n++
		rest := lfDeleteMin(root)
		h.slot.Retire(root)
		root = rest
	}
	if root != nil {
		publish(s, root)
	}
	s.size.Add(-int64(n))
	return n
}

var (
	_ Queue       = (*LockFreeMQ)(nil)
	_ BatchQueue  = (*LockFreeMQ)(nil)
	_ HandleQueue = (*LockFreeMQ)(nil)
	_ Handle      = (*lfHandle)(nil)
)

// Recycler is implemented by backends whose nodes are reused in place
// after safe-reclamation grace periods. cqtest uses it to decide whether
// steady-state allocations are gated (recycling backends must show reuse)
// or merely recorded as a baseline.
type Recycler interface {
	// RecyclesNodes reports whether steady-state push/pop traffic reuses
	// nodes instead of allocating.
	RecyclesNodes() bool
}
