package cq

import "relaxsched/internal/rng"

// Handle is a per-worker session on a queue. Backends that need worker
// identity — an epoch-reclamation slot to pin, a home shard for cache
// locality — implement HandleQueue and hand out one Handle per worker;
// everything a worker pushes or pops then flows through its handle.
//
// A Handle is single-goroutine: unlike the Queue methods it must not be
// shared. Handing a handle from the creating goroutine to its user is fine;
// concurrent use from two goroutines is not. Close releases the worker's
// backend resources (epoch slot, shard affinity) and must be called when
// the worker is done — a handle abandoned without Close degrades
// reclamation until the garbage collector picks up the pieces, but never
// blocks other workers. A closed handle must not be used again.
//
// The operations follow the Queue/BatchQueue contract exactly: Push panics
// on ReservedPriority, Pop's ok=false means the structure appeared empty,
// and handle operations interleave safely with the queue-level methods and
// with other workers' handles.
type Handle interface {
	// Push inserts a (value, priority) pair.
	Push(r *rng.Xoshiro, value, priority int64)
	// Pop removes and returns a small-rank pair; ok=false if the queue
	// appeared empty.
	Pop(r *rng.Xoshiro) (value, priority int64, ok bool)
	// PushBatch inserts every pair in one coordination round where the
	// backend supports it.
	PushBatch(r *rng.Xoshiro, pairs []Pair)
	// PopBatch removes up to len(dst) small-rank pairs into dst and returns
	// how many were written; 0 means the queue appeared empty.
	PopBatch(r *rng.Xoshiro, dst []Pair) int
	// Close releases the handle's backend resources. The handle must not be
	// used afterwards.
	Close()
}

// HandleQueue is a queue that benefits from per-worker handles. The
// engine's workers and producers detect it and route their traffic through
// pinned handles; the plain Queue/BatchQueue methods keep working for
// callers without a worker identity (they borrow an anonymous handle per
// operation).
type HandleQueue interface {
	BatchQueue
	// NewHandle returns a fresh worker session. Handles are cheap; create
	// one per worker goroutine and Close it when the worker exits.
	NewHandle() Handle
}

// HandleFor returns a worker session on q: q.NewHandle() when the backend
// supports handles, and otherwise a pass-through wrapper whose Close is a
// no-op — so callers can uniformly acquire one handle per worker without
// caring which backend is underneath.
func HandleFor(q BatchQueue) Handle {
	if hq, ok := q.(HandleQueue); ok {
		return hq.NewHandle()
	}
	return queueHandle{q}
}

// queueHandle adapts a handle-less backend to the Handle interface: every
// operation forwards to the shared queue, and Close does nothing.
type queueHandle struct {
	BatchQueue
}

func (queueHandle) Close() {}
