package cq

import "relaxsched/internal/rng"

// Pair is one (value, priority) element of a batch operation. Lower
// priorities are better, exactly as in Queue.Push.
type Pair struct {
	Value    int64
	Priority int64
}

// BatchQueue extends Queue with amortized bulk operations: one coordination
// round (lock acquisition, CAS, shard choice) covers a whole batch of pairs
// instead of a single one. This is the hot-path API of the parallel engine:
// core.ParallelRun and sssp.ParallelWith buffer relaxations per worker and
// flush them through PushBatch/PopBatch, so queue-operation cost is paid
// once per batch rather than once per element (the ARock-style local-buffer
// amortization named in ROADMAP.md).
//
// Backends implement it natively when they can genuinely amortize (the
// MultiQueue holds one queue lock across the batch; the lock-free
// MultiQueue folds a batch into a single root CAS). Every queue built by
// New implements BatchQueue: backends without a native implementation are
// wrapped in a generic fallback that loops the singleton operations, so
// callers can always type-assert or use AsBatch.
//
// Batch operations follow the singleton contract: PushBatch panics on
// ReservedPriority, PopBatch returning 0 means the structure *appeared*
// empty (callers still need their own termination protocol), and batches
// interleave safely with concurrent singleton Push/Pop.
type BatchQueue interface {
	Queue
	// PushBatch inserts every pair. Backends may place the whole batch in
	// one internal structure; relaxation quality degrades gracefully with
	// batch size, it is not an error.
	PushBatch(r *rng.Xoshiro, pairs []Pair)
	// PopBatch removes up to len(dst) small-rank pairs into dst and
	// returns how many were written. 0 means the queue appeared empty.
	PopBatch(r *rng.Xoshiro, dst []Pair) int
}

// AsBatch returns q's native BatchQueue when it has one, and otherwise a
// generic fallback whose batch operations loop the singleton Push/Pop. New
// already applies it, so queues built through the registry always support
// the batch API.
func AsBatch(q Queue) BatchQueue {
	if bq, ok := q.(BatchQueue); ok {
		return bq
	}
	return &fallbackBatch{q}
}

// fallbackBatch adapts a singleton-only backend to BatchQueue. It amortizes
// nothing — each element still pays a full queue operation — but it keeps
// the engine's batch path uniform across backends so a backend comparison
// isolates the data structure, not the calling convention.
type fallbackBatch struct {
	Queue
}

func (f *fallbackBatch) PushBatch(r *rng.Xoshiro, pairs []Pair) {
	// Validate before inserting anything, so a reserved priority panics
	// with the queue untouched — the same all-or-nothing behaviour as the
	// native batch implementations.
	for _, p := range pairs {
		if p.Priority == ReservedPriority {
			panic("cq: priority MaxInt64 is reserved")
		}
	}
	for _, p := range pairs {
		f.Queue.Push(r, p.Value, p.Priority)
	}
}

func (f *fallbackBatch) PopBatch(r *rng.Xoshiro, dst []Pair) int {
	n := 0
	for n < len(dst) {
		v, p, ok := f.Queue.Pop(r)
		if !ok {
			break
		}
		dst[n] = Pair{Value: v, Priority: p}
		n++
	}
	return n
}

var _ BatchQueue = (*fallbackBatch)(nil)
