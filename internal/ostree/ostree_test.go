package ostree

import (
	"sort"
	"testing"
	"testing/quick"

	"relaxsched/internal/rng"
)

type key struct{ prio, id int64 }

func sortedKeys(m map[key]bool) []key {
	ks := make([]key, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Slice(ks, func(i, j int) bool {
		if ks[i].prio != ks[j].prio {
			return ks[i].prio < ks[j].prio
		}
		return ks[i].id < ks[j].id
	})
	return ks
}

func TestInsertRankDelete(t *testing.T) {
	tr := New(1)
	tr.Insert(10, 0)
	tr.Insert(5, 1)
	tr.Insert(20, 2)
	if got := tr.Rank(5, 1); got != 1 {
		t.Fatalf("Rank(5) = %d, want 1", got)
	}
	if got := tr.Rank(10, 0); got != 2 {
		t.Fatalf("Rank(10) = %d, want 2", got)
	}
	if got := tr.Rank(20, 2); got != 3 {
		t.Fatalf("Rank(20) = %d, want 3", got)
	}
	tr.Delete(10, 0)
	if got := tr.Rank(20, 2); got != 2 {
		t.Fatalf("after delete, Rank(20) = %d, want 2", got)
	}
	if tr.Len() != 2 {
		t.Fatalf("Len = %d, want 2", tr.Len())
	}
}

func TestTiesBrokenByID(t *testing.T) {
	tr := New(2)
	tr.Insert(7, 3)
	tr.Insert(7, 1)
	tr.Insert(7, 2)
	if got := tr.Rank(7, 1); got != 1 {
		t.Fatalf("Rank(7,1) = %d", got)
	}
	if got := tr.Rank(7, 2); got != 2 {
		t.Fatalf("Rank(7,2) = %d", got)
	}
	if got := tr.Rank(7, 3); got != 3 {
		t.Fatalf("Rank(7,3) = %d", got)
	}
}

func TestMinAndKth(t *testing.T) {
	tr := New(3)
	vals := []int64{50, 10, 40, 20, 30}
	for i, v := range vals {
		tr.Insert(v, int64(i))
	}
	p, _ := tr.Min()
	if p != 10 {
		t.Fatalf("Min = %d, want 10", p)
	}
	for k, want := range []int64{10, 20, 30, 40, 50} {
		p, _ := tr.Kth(k + 1)
		if p != want {
			t.Fatalf("Kth(%d) = %d, want %d", k+1, p, want)
		}
	}
}

func TestPanics(t *testing.T) {
	tr := New(4)
	tr.Insert(1, 1)
	for name, f := range map[string]func(){
		"dup insert":    func() { tr.Insert(1, 1) },
		"delete absent": func() { tr.Delete(2, 2) },
		"rank absent":   func() { tr.Rank(2, 2) },
		"kth 0":         func() { tr.Kth(0) },
		"kth too big":   func() { tr.Kth(5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
	if tr.Contains(2, 2) {
		t.Fatal("Contains(absent) = true")
	}
	if !tr.Contains(1, 1) {
		t.Fatal("Contains(present) = false")
	}
}

func TestEmptyMinPanics(t *testing.T) {
	tr := New(5)
	defer func() {
		if recover() == nil {
			t.Fatal("Min on empty should panic")
		}
	}()
	tr.Min()
}

// Property: ranks always agree with a sorted reference slice under random
// insert/delete sequences.
func TestRankAgainstReference(t *testing.T) {
	check := func(seed uint64) bool {
		r := rng.New(seed)
		tr := New(seed ^ 0xabc)
		live := map[key]bool{}
		for step := 0; step < 300; step++ {
			if r.Intn(3) != 0 || len(live) == 0 {
				k := key{int64(r.Intn(50)), int64(r.Intn(50))}
				if live[k] {
					continue
				}
				tr.Insert(k.prio, k.id)
				live[k] = true
			} else {
				ks := sortedKeys(live)
				k := ks[r.Intn(len(ks))]
				tr.Delete(k.prio, k.id)
				delete(live, k)
			}
			// Verify every rank.
			ks := sortedKeys(live)
			if tr.Len() != len(ks) {
				return false
			}
			for i, k := range ks {
				if tr.Rank(k.prio, k.id) != i+1 {
					return false
				}
				p, id := tr.Kth(i + 1)
				if p != k.prio || id != k.id {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestLargeSequential(t *testing.T) {
	tr := New(6)
	const n = 10000
	for i := 0; i < n; i++ {
		tr.Insert(int64(i), int64(i))
	}
	if tr.Len() != n {
		t.Fatalf("Len = %d", tr.Len())
	}
	if got := tr.Rank(n/2, n/2); got != n/2+1 {
		t.Fatalf("Rank mid = %d", got)
	}
	for i := 0; i < n; i += 2 {
		tr.Delete(int64(i), int64(i))
	}
	if tr.Len() != n/2 {
		t.Fatalf("Len after deletes = %d", tr.Len())
	}
	if got := tr.Rank(1, 1); got != 1 {
		t.Fatalf("Rank(1) = %d", got)
	}
}

func BenchmarkInsertDeleteRank(b *testing.B) {
	tr := New(7)
	const window = 4096
	for i := 0; i < window; i++ {
		tr.Insert(int64(i), int64(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v := int64(window + i)
		tr.Insert(v, v)
		tr.Rank(v, v)
		tr.Delete(int64(i), int64(i))
	}
}
