// Package ostree implements an order-statistic treap: a randomized balanced
// binary search tree over (priority, id) pairs that supports rank queries in
// O(log n) expected time. It is the measurement substrate for the scheduler
// auditor, which needs to know the exact rank of every task a relaxed
// scheduler returns in order to verify the paper's RankBound property.
//
// Keys are ordered by (priority, id): ties in priority are broken by id so
// every key is unique and ranks are well defined.
package ostree

import "relaxsched/internal/rng"

type node struct {
	prio     int64
	id       int64
	heapKey  uint64 // treap heap priority
	size     int32
	from, to *node // left, right children
}

// Tree is an order-statistic treap. The zero value is not usable; construct
// with New.
type Tree struct {
	root *node
	rand *rng.Xoshiro
}

// New returns an empty tree whose internal balancing randomness is seeded
// with seed (results are deterministic for a fixed seed and op sequence).
func New(seed uint64) *Tree {
	return &Tree{rand: rng.New(seed)}
}

// Len reports the number of keys in the tree.
func (t *Tree) Len() int { return size(t.root) }

func size(n *node) int {
	if n == nil {
		return 0
	}
	return int(n.size)
}

func (n *node) update() {
	n.size = int32(1 + size(n.from) + size(n.to))
}

// less orders keys by (prio, id).
func less(p1, i1, p2, i2 int64) bool {
	if p1 != p2 {
		return p1 < p2
	}
	return i1 < i2
}

// Insert adds the key (priority, id). It panics if the key already exists.
func (t *Tree) Insert(priority, id int64) {
	t.root = t.insert(t.root, &node{prio: priority, id: id, heapKey: t.rand.Uint64(), size: 1})
}

func (t *Tree) insert(n, x *node) *node {
	if n == nil {
		return x
	}
	if x.prio == n.prio && x.id == n.id {
		panic("ostree: Insert of existing key")
	}
	if x.heapKey < n.heapKey {
		// x becomes the new subtree root; split n's subtree around x's key.
		x.from, x.to = t.split(n, x.prio, x.id)
		x.update()
		return x
	}
	if less(x.prio, x.id, n.prio, n.id) {
		n.from = t.insert(n.from, x)
	} else {
		n.to = t.insert(n.to, x)
	}
	n.update()
	return n
}

// split partitions subtree n into (< key, >= key). Panics if key present.
func (t *Tree) split(n *node, priority, id int64) (*node, *node) {
	if n == nil {
		return nil, nil
	}
	if priority == n.prio && id == n.id {
		panic("ostree: split hit existing key")
	}
	if less(n.prio, n.id, priority, id) {
		l, r := t.split(n.to, priority, id)
		n.to = l
		n.update()
		return n, r
	}
	l, r := t.split(n.from, priority, id)
	n.from = r
	n.update()
	return l, n
}

// Delete removes the key (priority, id). It panics if the key is absent.
func (t *Tree) Delete(priority, id int64) {
	t.root = t.delete(t.root, priority, id)
}

func (t *Tree) delete(n *node, priority, id int64) *node {
	if n == nil {
		panic("ostree: Delete of absent key")
	}
	if priority == n.prio && id == n.id {
		return t.merge(n.from, n.to)
	}
	if less(priority, id, n.prio, n.id) {
		n.from = t.delete(n.from, priority, id)
	} else {
		n.to = t.delete(n.to, priority, id)
	}
	n.update()
	return n
}

// merge joins two subtrees where every key in a precedes every key in b.
func (t *Tree) merge(a, b *node) *node {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	if a.heapKey < b.heapKey {
		a.to = t.merge(a.to, b)
		a.update()
		return a
	}
	b.from = t.merge(a, b.from)
	b.update()
	return b
}

// Rank returns the 1-based rank of the key (priority, id): 1 means it is the
// minimum. It panics if the key is absent.
func (t *Tree) Rank(priority, id int64) int {
	rank := 1
	n := t.root
	for n != nil {
		switch {
		case priority == n.prio && id == n.id:
			return rank + size(n.from)
		case less(priority, id, n.prio, n.id):
			n = n.from
		default:
			rank += size(n.from) + 1
			n = n.to
		}
	}
	panic("ostree: Rank of absent key")
}

// CountLess returns the number of keys with priority strictly less than
// priority. This yields a tie-tolerant rank: CountLess(p)+1 is the best
// possible rank of any key with priority p.
func (t *Tree) CountLess(priority int64) int {
	count := 0
	n := t.root
	for n != nil {
		if n.prio < priority {
			count += size(n.from) + 1
			n = n.to
		} else {
			n = n.from
		}
	}
	return count
}

// Contains reports whether the key (priority, id) is in the tree.
func (t *Tree) Contains(priority, id int64) bool {
	n := t.root
	for n != nil {
		switch {
		case priority == n.prio && id == n.id:
			return true
		case less(priority, id, n.prio, n.id):
			n = n.from
		default:
			n = n.to
		}
	}
	return false
}

// Min returns the minimum key. It panics on an empty tree.
func (t *Tree) Min() (priority, id int64) {
	n := t.root
	if n == nil {
		panic("ostree: Min of empty tree")
	}
	for n.from != nil {
		n = n.from
	}
	return n.prio, n.id
}

// Kth returns the k-th smallest key (1-based). It panics if k is out of
// range.
func (t *Tree) Kth(k int) (priority, id int64) {
	if k < 1 || k > t.Len() {
		panic("ostree: Kth out of range")
	}
	n := t.root
	for {
		l := size(n.from)
		switch {
		case k == l+1:
			return n.prio, n.id
		case k <= l:
			n = n.from
		default:
			k -= l + 1
			n = n.to
		}
	}
}
