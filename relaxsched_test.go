package relaxsched_test

import (
	"bytes"
	"sort"
	"strings"
	"sync/atomic"
	"testing"

	"relaxsched"
)

func TestFacadeSchedulers(t *testing.T) {
	for name, s := range map[string]relaxsched.Scheduler{
		"exact":      relaxsched.NewExactScheduler(100),
		"k-relaxed":  relaxsched.NewKRelaxedScheduler(100, 4),
		"random-k":   relaxsched.NewRandomKScheduler(100, 4, 1),
		"batch":      relaxsched.NewBatchScheduler(100, 4),
		"multiqueue": relaxsched.NewMultiQueue(100, 4, 2, false, 1),
		"spraylist":  relaxsched.NewSprayList(100, 4, 1),
	} {
		for i := 0; i < 100; i++ {
			s.Insert(i, int64(i))
		}
		count := 0
		for {
			task, _, ok := s.ApproxGetMin()
			if !ok {
				break
			}
			s.DeleteTask(task)
			count++
		}
		if count != 100 {
			t.Fatalf("%s drained %d tasks", name, count)
		}
	}
}

func TestFacadeAuditor(t *testing.T) {
	a := relaxsched.NewAuditor(relaxsched.NewExactScheduler(50), 8)
	for i := 0; i < 50; i++ {
		a.Insert(i, int64(i))
	}
	for {
		task, _, ok := a.ApproxGetMin()
		if !ok {
			break
		}
		a.DeleteTask(task)
	}
	rep := a.Report()
	if rep.MaxRank != 1 || rep.Calls != 50 {
		t.Fatalf("report: %+v", rep)
	}
}

func TestFacadeIncrementalRun(t *testing.T) {
	dag := relaxsched.NewDAG(100)
	for j := 1; j < 100; j++ {
		dag.AddDep(j-1, j)
	}
	res, err := relaxsched.RunIncremental(dag, relaxsched.NewKRelaxedScheduler(100, 4),
		relaxsched.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Processed != 100 {
		t.Fatalf("processed %d", res.Processed)
	}
	if res.ExtraSteps == 0 {
		t.Fatal("chain under relaxation should waste steps")
	}
}

func TestFacadeSSSPPipeline(t *testing.T) {
	g := relaxsched.RandomGraph(500, 2500, 100, 7)
	exact := relaxsched.Dijkstra(g, 0)
	ds := relaxsched.DeltaStepping(g, 0, 10)
	for i := range exact.Dist {
		if exact.Dist[i] != ds.Dist[i] {
			t.Fatal("delta-stepping disagrees")
		}
	}
	rel, err := relaxsched.RelaxedSSSP(g, 0, relaxsched.NewMultiQueue(500, 4, 2, true, 3))
	if err != nil {
		t.Fatal(err)
	}
	par := relaxsched.ParallelSSSP(g, 0, 4, 2, 9)
	for i := range exact.Dist {
		if rel.Dist[i] != exact.Dist[i] || par.Dist[i] != exact.Dist[i] {
			t.Fatal("relaxed/parallel disagree with Dijkstra")
		}
	}
	if par.Overhead() < 1 {
		t.Fatalf("overhead %f", par.Overhead())
	}
}

func TestFacadeRelaxedSSSPRejectsNonDecreaseKey(t *testing.T) {
	g := relaxsched.RandomGraph(50, 100, 10, 1)
	// Random-insertion MultiQueue cannot DecreaseKey.
	_, err := relaxsched.RelaxedSSSP(g, 0, relaxsched.NewMultiQueue(50, 2, 2, false, 1))
	if err == nil {
		t.Fatal("expected error for scheduler without DecreaseKey")
	}
	if !strings.Contains(err.Error(), "DecreaseKey") {
		t.Fatalf("unhelpful error: %v", err)
	}
}

func TestFacadeGraphGeneratorsAndDIMACS(t *testing.T) {
	road := relaxsched.RoadGraph(10, 10, 100, 50, 2)
	social := relaxsched.SocialGraph(200, 4, 100, 2)
	if road.NumNodes != 100 || social.NumNodes != 200 {
		t.Fatal("generator sizes wrong")
	}
	var buf bytes.Buffer
	if err := relaxsched.WriteDIMACS(&buf, road); err != nil {
		t.Fatal(err)
	}
	parsed, err := relaxsched.ParseDIMACS(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if parsed.NumNodes != road.NumNodes || parsed.NumEdges() != road.NumEdges() {
		t.Fatal("DIMACS round trip changed the graph")
	}
}

func TestFacadeBSTSort(t *testing.T) {
	keys := []int64{9, 3, 7, 1, 5}
	got := relaxsched.BSTSort(keys)
	want := append([]int64(nil), keys...)
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v", got)
		}
	}
	dag := relaxsched.BSTSortDAG(keys)
	if dag.N != 5 {
		t.Fatalf("dag size %d", dag.N)
	}
}

func TestFacadeDelaunay(t *testing.T) {
	pts := []relaxsched.Point{{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 1, Y: 1}, {X: 0, Y: 1}, {X: 0.5, Y: 0.5}}
	tris, err := relaxsched.Triangulate(pts, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(tris) != 4 {
		t.Fatalf("%d triangles, want 4", len(tris))
	}
	dag, err := relaxsched.DelaunayDAG(pts)
	if err != nil {
		t.Fatal(err)
	}
	if dag.N != 5 {
		t.Fatalf("dag size %d", dag.N)
	}
}

func TestFacadeGreedyAlgorithms(t *testing.T) {
	g := relaxsched.RandomGraph(300, 900, 10, 5)
	w := relaxsched.NewGreedyWorkload(g, 6)
	inMIS, res, err := relaxsched.GreedyMIS(w, relaxsched.NewKRelaxedScheduler(g.NumNodes, 4))
	if err != nil {
		t.Fatal(err)
	}
	if res.Processed != int64(g.NumNodes) {
		t.Fatalf("processed %d", res.Processed)
	}
	if err := relaxsched.VerifyMIS(g, inMIS); err != nil {
		t.Fatal(err)
	}
	colors, _, err := relaxsched.GreedyColoring(w, relaxsched.NewExactScheduler(g.NumNodes))
	if err != nil {
		t.Fatal(err)
	}
	if err := relaxsched.VerifyColoring(g, colors); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeParallelIncrementalAndTree(t *testing.T) {
	dag := relaxsched.BSTSortDAG([]int64{5, 2, 8, 1, 9, 3, 7, 4, 6, 0})
	res, err := relaxsched.RunIncrementalParallel(dag, relaxsched.ParallelRunOptions{ExecOptions: relaxsched.ExecOptions{Threads: 4, QueueMultiplier: 2, Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Processed != 10 {
		t.Fatalf("processed %d", res.Processed)
	}
	g := relaxsched.RandomGraph(200, 800, 50, 8)
	sr, parents := relaxsched.DijkstraTree(g, 0)
	for v := 1; v < g.NumNodes; v++ {
		if sr.Dist[v] == relaxsched.InfDistance {
			continue
		}
		p := relaxsched.ShortestPathTo(parents, 0, v)
		if len(p) < 2 || p[0] != 0 || p[len(p)-1] != v {
			t.Fatalf("bad path to %d: %v", v, p)
		}
		break
	}
}

func TestFacadeBranchAndBound(t *testing.T) {
	tree := relaxsched.BnBTree{Depth: 6, Branch: 3, MaxEdgeCost: 50, Seed: 4}
	const budget = 1 << 16
	exact, err := relaxsched.BranchAndBound(tree, relaxsched.NewExactScheduler(budget), budget)
	if err != nil {
		t.Fatal(err)
	}
	relaxed, err := relaxsched.BranchAndBound(tree, relaxsched.NewKRelaxedScheduler(budget, 16), budget)
	if err != nil {
		t.Fatal(err)
	}
	if exact.Best != relaxed.Best {
		t.Fatalf("relaxation changed the optimum: %d vs %d", exact.Best, relaxed.Best)
	}
}

func TestFacadeTransactions(t *testing.T) {
	dag := relaxsched.BSTSortDAG([]int64{5, 2, 8, 1, 9, 3, 7, 4, 6, 0})
	res, err := relaxsched.SimulateTransactions(dag, relaxsched.TxnConfig{
		K: 2, Workers: 2, MaxDuration: 2, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Commits != 10 {
		t.Fatalf("commits %d", res.Commits)
	}
}

func TestFacadeParallelTransactions(t *testing.T) {
	spec := relaxsched.TxnWorkloadSpec{
		Txns: 1200, Keys: 64, Skew: 0.99, OpsPerTxn: 3, ReadFrac: 0.5, Seed: 11,
	}
	// The sequential model oracle and the real parallel execution share
	// the spec: the model commits everything, and so must the engine.
	model, err := relaxsched.SimulateTransactionSpec(spec, relaxsched.TxnConfig{
		K: 2, Workers: 2, MaxDuration: 2, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if model.Commits != int64(spec.Txns) {
		t.Fatalf("model commits %d of %d", model.Commits, spec.Txns)
	}
	res, err := relaxsched.ParallelTransactions(spec, relaxsched.ParallelTxnOptions{
		ExecOptions: relaxsched.ExecOptions{Threads: 4, QueueMultiplier: 2, Seed: 3},
		Producers:   2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Commits != int64(spec.Txns) {
		t.Fatalf("parallel commits %d of %d", res.Commits, spec.Txns)
	}
	if res.Starts != res.Commits+res.Aborts {
		t.Fatalf("starts identity broken: %+v", res.Counts)
	}
}

func TestFacadeQueueBackends(t *testing.T) {
	backends := relaxsched.QueueBackends()
	if len(backends) < 2 {
		t.Fatalf("QueueBackends returned %d backends, want >= 2", len(backends))
	}
	if backends[0] != relaxsched.BackendMultiQueue {
		t.Fatalf("default backend is %q, want %q", backends[0], relaxsched.BackendMultiQueue)
	}
	g := relaxsched.RandomGraph(400, 2000, 100, 7)
	exact := relaxsched.Dijkstra(g, 0)
	for _, backend := range backends {
		par := relaxsched.ParallelSSSPWith(g, 0, relaxsched.ParallelSSSPOptions{ExecOptions: relaxsched.ExecOptions{Threads: 4, QueueMultiplier: 2, Backend: backend, Seed: 9}})
		for i := range exact.Dist {
			if par.Dist[i] != exact.Dist[i] {
				t.Fatalf("%s: parallel disagrees with Dijkstra", backend)
			}
		}
		keys := make([]int64, 500)
		for i := range keys {
			keys[i] = int64((i * 2654435761) % 100003)
		}
		dag := relaxsched.BSTSortDAG(keys)
		run, err := relaxsched.RunIncrementalParallel(dag, relaxsched.ParallelRunOptions{ExecOptions: relaxsched.ExecOptions{Threads: 4, QueueMultiplier: 2, Backend: backend, Seed: 3}})
		if err != nil {
			t.Fatalf("%s: %v", backend, err)
		}
		if run.Processed != 500 {
			t.Fatalf("%s: processed %d of 500", backend, run.Processed)
		}
	}
}

func TestFacadeParallelWorkloads(t *testing.T) {
	// The engine-backed parallel workloads added with internal/engine:
	// branch-and-bound (dynamic spawning) and greedy MIS/coloring (static
	// DAG over the permutation), through every backend.
	tree := relaxsched.BnBTree{Depth: 6, Branch: 3, MaxEdgeCost: 40, Seed: 5}
	seq, err := relaxsched.BranchAndBound(tree, relaxsched.NewExactScheduler(1<<14), 1<<14)
	if err != nil {
		t.Fatal(err)
	}
	g := relaxsched.RandomGraph(600, 1800, 10, 3)
	w := relaxsched.NewGreedyWorkload(g, 11)
	for _, backend := range relaxsched.QueueBackends() {
		par, err := relaxsched.ParallelBranchAndBound(tree, relaxsched.ParallelBnBOptions{ExecOptions: relaxsched.ExecOptions{Threads: 4, QueueMultiplier: 2, Backend: backend, Seed: 1}, Budget: 1 << 14})
		if err != nil {
			t.Fatalf("%s: %v", backend, err)
		}
		if par.Best != seq.Best {
			t.Fatalf("%s: parallel Best = %d, sequential %d", backend, par.Best, seq.Best)
		}
		inSet, _, err := relaxsched.ParallelGreedyMIS(w, relaxsched.ParallelMISOptions{ExecOptions: relaxsched.ExecOptions{Threads: 4, QueueMultiplier: 2, Backend: backend, Seed: 2}})
		if err != nil {
			t.Fatalf("%s: %v", backend, err)
		}
		if err := relaxsched.VerifyMIS(g, inSet); err != nil {
			t.Fatalf("%s: %v", backend, err)
		}
		colors, _, err := relaxsched.ParallelGreedyColoring(w, relaxsched.ParallelMISOptions{ExecOptions: relaxsched.ExecOptions{Threads: 4, QueueMultiplier: 2, Backend: backend, Seed: 4}})
		if err != nil {
			t.Fatalf("%s: %v", backend, err)
		}
		if err := relaxsched.VerifyColoring(g, colors); err != nil {
			t.Fatalf("%s: %v", backend, err)
		}
	}
}

func TestFacadeStreamTopK(t *testing.T) {
	// The streaming (open-system) scheduler through the facade: the
	// self-driving harness on every backend, and a manually driven
	// JobProducer handle.
	for _, backend := range relaxsched.QueueBackends() {
		res, err := relaxsched.StreamTopK(relaxsched.StreamTopKOptions{
			StreamOptions:   relaxsched.TopKStreamOptions{ExecOptions: relaxsched.ExecOptions{Threads: 4, QueueMultiplier: 2, Backend: backend, Seed: 7}, Producers: 2},
			JobsPerProducer: 300,
		})
		if err != nil {
			t.Fatalf("%s: %v", backend, err)
		}
		if res.Jobs != 600 {
			t.Fatalf("%s: executed %d of 600 jobs", backend, res.Jobs)
		}
		if res.MeanRankError < 0 || res.MaxRankError >= 600 {
			t.Fatalf("%s: implausible rank error %v/%d", backend, res.MeanRankError, res.MaxRankError)
		}
	}

	var executed atomic.Int64
	s, err := relaxsched.NewTopKStream(relaxsched.TopKStreamOptions{ExecOptions: relaxsched.ExecOptions{Threads: 2, QueueMultiplier: 2, Seed: 3}, Producers: 1, Execute: func(_ int, _, _ int64) { executed.Add(1) }})
	if err != nil {
		t.Fatal(err)
	}
	p := s.NewProducer()
	for i := 0; i < 200; i++ {
		p.Push(int64(i), int64(i%37))
	}
	p.Close()
	if res := s.Wait(); res.Jobs != 200 || executed.Load() != 200 {
		t.Fatalf("jobs %d, executed %d, want 200", res.Jobs, executed.Load())
	}
}
